/// \file geometry.hpp
/// \brief sPHENIX TPC detector geometry and wedge partitioning (§2.1).
///
/// The TPC is a cylinder of 48 sensor layers grouped radially into three
/// layer groups (inner / middle / outer) of 16 consecutive layers each.
/// Within a group every layer shares the same azimuthal segmentation, so a
/// group digitizes to a dense 3-D grid (radial, azimuthal, horizontal).
///
/// The grid is partitioned into 24 wedges: 12 azimuthal sectors (30° each)
/// x 2 horizontal halves (split at the transverse plane through the
/// collision point).  A full-scale outer-group wedge is (16, 192, 249);
/// padded to 256 along the horizontal for the networks (§2.3).
///
/// Everything is parameterized by a `scale` so experiments can run on a
/// reduced wedge, e.g. scale 1/4 -> (16, 48, 62)->64, with identical
/// compression-ratio arithmetic (tested).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace nc::tpc {

enum class LayerGroup : int { kInner = 0, kMiddle = 1, kOuter = 2 };

/// Logical shape of one wedge: (radial, azimuthal, horizontal), horizontal
/// unpadded.
struct WedgeShape {
  std::int64_t radial = 16;
  std::int64_t azim = 192;
  std::int64_t horiz = 249;

  /// Horizontal length padded up to a multiple of 16 so both the 3-D
  /// networks (4 stride-2 stages) and the 2-D networks (3 stages) divide
  /// evenly — the paper pads 249 -> 256.
  std::int64_t padded_horiz() const { return (horiz + 15) / 16 * 16; }

  std::int64_t voxels() const { return radial * azim * horiz; }
  std::int64_t padded_voxels() const { return radial * azim * padded_horiz(); }

  bool operator==(const WedgeShape&) const = default;
  std::string to_string() const;
};

/// Full detector description.  Distances in cm, field in Tesla.
struct TpcGeometry {
  // Radial envelope of the three layer groups (sPHENIX TDR: ~20-78 cm
  // active TPC radius; 16 layers per group).
  double r_inner_min = 30.0;
  double r_group_span = 16.0;  ///< radial span of one 16-layer group
  int layers_per_group = 16;
  int n_groups = 3;

  double z_half_length = 105.0;  ///< drift length each side of z = 0
  double b_field = 1.4;          ///< solenoid field along z

  int sectors = 12;  ///< azimuthal wedge sectors (30 degrees each)

  // Full-scale digitization of the *outer* layer group.
  std::int64_t azim_bins_full = 2304;  ///< columns around 2*pi
  std::int64_t z_bins_full = 498;      ///< time bins across both halves

  /// Linear down-scale factor for experiments (1 = paper scale).  Applies to
  /// the azimuthal and horizontal binning only; radial layer count is part
  /// of the architecture and never scales.
  double scale = 1.0;

  /// Scaled azimuthal bins, rounded to a multiple of sectors * 16 so the
  /// 12-sector wedge partition stays exact AND every wedge's azimuthal
  /// extent divides by 16 — required by the 3-D variants' four stride-2
  /// stages (192 = 12 * 16 at paper scale).
  std::int64_t azim_bins() const {
    const auto raw = static_cast<std::int64_t>(azim_bins_full * scale + 0.5);
    const std::int64_t s = sectors * 16;
    return std::max<std::int64_t>(s, (raw + s / 2) / s * s);
  }
  /// Scaled z bins, rounded to an even count so the two-half split is exact.
  std::int64_t z_bins() const {
    const auto raw = static_cast<std::int64_t>(z_bins_full * scale + 0.5);
    return std::max<std::int64_t>(2, raw / 2 * 2);
  }

  /// Wedge shape for a layer group at the current scale.
  WedgeShape wedge_shape() const {
    return WedgeShape{layers_per_group, azim_bins() / sectors, z_bins() / 2};
  }

  /// Radius of layer `l` (0-based within `group`), at layer centers.
  double layer_radius(LayerGroup group, int l) const {
    const double r0 = r_inner_min + static_cast<int>(group) * r_group_span;
    return r0 + (l + 0.5) * r_group_span / layers_per_group;
  }

  /// Total voxels in the outer group 3-D picture at this scale.
  std::int64_t group_voxels() const {
    return layers_per_group * azim_bins() * z_bins();
  }

  /// The paper's experiment scale: full-size wedges (16, 192, 249).
  static TpcGeometry paper_scale() { return TpcGeometry{}; }

  /// Reduced geometry used by CPU-budget experiments: (16, 48, 62).
  static TpcGeometry bench_scale() {
    TpcGeometry g;
    g.scale = 0.25;
    return g;
  }
};

/// Identifies one wedge within an event.
struct WedgeId {
  std::int64_t event = 0;
  int sector = 0;  ///< [0, 12)
  int side = 0;    ///< 0: z < 0, 1: z >= 0
};

/// Compression-ratio arithmetic (§3.1): ratio of unpadded wedge size to code
/// size, both as 16-bit values.
double compression_ratio(const WedgeShape& wedge, std::int64_t code_numel);

}  // namespace nc::tpc
