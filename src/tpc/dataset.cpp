#include "tpc/dataset.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/parallel.hpp"
#include "util/serialize.hpp"

namespace nc::tpc {

namespace {
constexpr char kKind[4] = {'W', 'D', 'G', 'S'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

core::Tensor pad_wedge(const core::Tensor& wedge, std::int64_t padded_horiz) {
  const std::int64_t radial = wedge.dim(0), azim = wedge.dim(1), horiz = wedge.dim(2);
  if (padded_horiz < horiz) {
    throw std::invalid_argument("pad_wedge: padded length shorter than data");
  }
  core::Tensor out({radial, azim, padded_horiz});
  const float* src = wedge.data();
  float* dst = out.data();
  for (std::int64_t ra = 0; ra < radial * azim; ++ra) {
    std::copy(src + ra * horiz, src + (ra + 1) * horiz, dst + ra * padded_horiz);
  }
  return out;
}

core::Tensor clip_horizontal(const core::Tensor& t, std::int64_t valid_horiz) {
  const std::int64_t padded = t.dim(t.ndim() - 1);
  if (valid_horiz > padded) {
    throw std::invalid_argument("clip_horizontal: valid length exceeds data");
  }
  core::Shape out_shape = t.shape();
  out_shape.back() = valid_horiz;
  core::Tensor out(out_shape);
  const std::int64_t rows = t.numel() / padded;
  const float* src = t.data();
  float* dst = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    std::copy(src + r * padded, src + r * padded + valid_horiz,
              dst + r * valid_horiz);
  }
  return out;
}

WedgeDataset WedgeDataset::generate(const DatasetConfig& config) {
  WedgeDataset ds;
  ds.shape_ = config.geometry.wedge_shape();
  const std::int64_t ph = ds.shape_.padded_horiz();

  const std::int64_t n_events = config.n_events;
  std::vector<std::vector<core::Tensor>> per_event(
      static_cast<std::size_t>(n_events));

  // Events are independent Monte-Carlo draws: parallelize with one seeded
  // generator per event so results do not depend on thread schedule.
  util::parallel_for(
      0, n_events,
      [&](std::int64_t e) {
        EventGenerator gen(config.geometry, config.generator,
                           config.seed + 0x9E37ull * static_cast<std::uint64_t>(e + 1));
        auto wedges = gen.generate_wedges();
        auto& out = per_event[static_cast<std::size_t>(e)];
        out.reserve(wedges.size());
        for (auto& w : wedges) out.push_back(pad_wedge(w, ph));
      },
      1);

  // Event-level split, in order (deterministic).  With >= 2 events both
  // splits are guaranteed non-empty regardless of the fraction/rounding.
  std::int64_t n_train =
      static_cast<std::int64_t>(static_cast<double>(n_events) * config.train_fraction + 0.5);
  if (n_events >= 2) {
    n_train = std::clamp<std::int64_t>(n_train, 1, n_events - 1);
  }
  for (std::int64_t e = 0; e < n_events; ++e) {
    auto& dst = e < n_train ? ds.train_ : ds.test_;
    for (auto& w : per_event[static_cast<std::size_t>(e)]) dst.push_back(std::move(w));
  }
  return ds;
}

double WedgeDataset::occupancy() const {
  const std::int64_t ph = padded_horiz();
  const std::int64_t vh = valid_horiz();
  std::int64_t nonzero = 0, total = 0;
  for (const auto* pool : {&train_, &test_}) {
    for (const auto& w : *pool) {
      const float* p = w.data();
      const std::int64_t rows = w.numel() / ph;
      for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t h = 0; h < vh; ++h) {
          nonzero += p[r * ph + h] > 0.f ? 1 : 0;
        }
      }
      total += rows * vh;
    }
  }
  return total ? static_cast<double>(nonzero) / static_cast<double>(total) : 0.0;
}

std::vector<std::int64_t> WedgeDataset::log_adc_histogram(std::int64_t bins) const {
  std::vector<std::int64_t> hist(static_cast<std::size_t>(bins), 0);
  const std::int64_t ph = padded_horiz();
  const std::int64_t vh = valid_horiz();
  const double scale = static_cast<double>(bins) / 10.0;
  for (const auto* pool : {&train_, &test_}) {
    for (const auto& w : *pool) {
      const float* p = w.data();
      const std::int64_t rows = w.numel() / ph;
      for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t h = 0; h < vh; ++h) {
          const double v = p[r * ph + h];
          auto b = static_cast<std::int64_t>(v * scale);
          if (b >= bins) b = bins - 1;
          if (b < 0) b = 0;
          ++hist[static_cast<std::size_t>(b)];
        }
      }
    }
  }
  return hist;
}

core::Tensor WedgeDataset::batch_2d(const std::vector<core::Tensor>& pool,
                                    const std::vector<std::int64_t>& indices) const {
  const std::int64_t n = static_cast<std::int64_t>(indices.size());
  const std::int64_t radial = shape_.radial, azim = shape_.azim, ph = padded_horiz();
  core::Tensor out({n, radial, azim, ph});
  const std::int64_t stride = radial * azim * ph;
  for (std::int64_t i = 0; i < n; ++i) {
    const auto& w = pool.at(static_cast<std::size_t>(indices[static_cast<std::size_t>(i)]));
    std::copy(w.data(), w.data() + stride, out.data() + i * stride);
  }
  return out;
}

core::Tensor WedgeDataset::batch_3d(const std::vector<core::Tensor>& pool,
                                    const std::vector<std::int64_t>& indices) const {
  core::Tensor b = batch_2d(pool, indices);
  const std::int64_t n = b.dim(0);
  return b.reshaped({n, 1, shape_.radial, shape_.azim, padded_horiz()});
}

void WedgeDataset::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  util::write_magic(os, kKind, kVersion);
  util::write_i64(os, shape_.radial);
  util::write_i64(os, shape_.azim);
  util::write_i64(os, shape_.horiz);
  for (const auto* pool : {&train_, &test_}) {
    util::write_u64(os, pool->size());
    for (const auto& w : *pool) {
      util::write_bytes(os, w.data(),
                        static_cast<std::size_t>(w.numel()) * sizeof(float));
    }
  }
}

WedgeDataset WedgeDataset::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  // Version-gate the payload parsing (same contract as checkpoint and
  // CompressedWedge streams): an unknown version must fail loudly here, not
  // be misparsed as v1 field soup.
  const std::uint32_t version = util::read_magic(is, kKind);
  if (version != kVersion) {
    throw util::SerializeError("unsupported dataset version " +
                               std::to_string(version) + " (expected " +
                               std::to_string(kVersion) + ")");
  }
  WedgeDataset ds;
  ds.shape_.radial = util::read_i64(is);
  ds.shape_.azim = util::read_i64(is);
  ds.shape_.horiz = util::read_i64(is);
  const std::int64_t ph = ds.shape_.padded_horiz();
  const core::Shape wshape{ds.shape_.radial, ds.shape_.azim, ph};
  const std::int64_t numel = core::shape_numel(wshape);
  for (auto* pool : {&ds.train_, &ds.test_}) {
    const std::uint64_t count = util::read_u64(is);
    pool->reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      core::Tensor w(wshape);
      util::read_bytes(is, w.data(), static_cast<std::size_t>(numel) * sizeof(float));
      pool->push_back(std::move(w));
    }
  }
  return ds;
}

}  // namespace nc::tpc
