#include "tpc/track.hpp"

#include <numbers>

namespace nc::tpc {

namespace {
// pT [GeV/c] = 0.003 * |q| * B [T] * R [cm]  (0.3 * B * R with R in m).
constexpr double kCurvatureConstant = 0.003;

double wrap_two_pi(double phi) {
  constexpr double two_pi = 2.0 * std::numbers::pi;
  phi = std::fmod(phi, two_pi);
  return phi < 0.0 ? phi + two_pi : phi;
}
}  // namespace

Helix::Helix(const TrackParams& params, double b_field)
    : params_(params),
      radius_(params.pt / (kCurvatureConstant * b_field)),
      sinh_eta_(std::sinh(params.eta)) {}

std::optional<LayerCrossing> Helix::cross_layer(double r, double z_half) const {
  const double two_r = 2.0 * radius_;
  if (r >= two_r) return std::nullopt;  // track curls up inside this radius

  const double half_angle = std::asin(r / two_r);
  const double arc = two_r * half_angle;
  const double z = params_.z0 + arc * sinh_eta_;
  if (std::abs(z) >= z_half) return std::nullopt;  // outside drift volume

  LayerCrossing c;
  c.phi = wrap_two_pi(params_.phi0 + params_.charge * half_angle);
  c.z = z;
  c.path = arc;
  return c;
}

}  // namespace nc::tpc
