/// \file digitizer.hpp
/// \brief Charge-to-ADC digitization chain (§2.1).
///
/// The simulated readout reproduces the data properties the BCAE method is
/// built around:
///  * 10-bit unsigned ADC in [0, 1023],
///  * additive electronics noise,
///  * zero suppression: ADC < 64 is recorded as 0, making the data ~10%
///    occupied and the log-ADC distribution bimodal with a hard edge at
///    log2(64 + 1) ≈ 6 (Fig. 3).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace nc::tpc {

struct DigitizerConfig {
  double gain = 1.0;          ///< ADC counts per unit deposited charge
  double noise_sigma = 2.5;   ///< gaussian electronics noise [ADC]
  int adc_max = 1023;         ///< 10-bit saturation
  int zs_threshold = 64;      ///< zero-suppression cut (§2.1)
};

class Digitizer {
 public:
  explicit Digitizer(DigitizerConfig config = {}) : config_(config) {}

  /// Convert one voxel's charge to a zero-suppressed ADC count.
  std::uint16_t digitize_voxel(float charge, util::Rng& rng) const {
    const double raw = config_.gain * static_cast<double>(charge) +
                       rng.normal(0.0, config_.noise_sigma);
    if (raw < config_.zs_threshold) return 0;
    const double clamped = std::min(raw, static_cast<double>(config_.adc_max));
    return static_cast<std::uint16_t>(clamped + 0.5);
  }

  /// Digitize a full charge grid in place of a fresh ADC buffer.
  void digitize(const std::vector<float>& charge, std::vector<std::uint16_t>& adc,
                util::Rng& rng) const;

  const DigitizerConfig& config() const { return config_; }

 private:
  DigitizerConfig config_;
};

/// The network target transform: log ADC = log2(ADC + 1), a float in
/// [0, 10]; nonzero voxels land strictly above 6 because of the
/// zero-suppression at 64.
inline float log_adc(std::uint16_t adc) {
  return std::log2(static_cast<float>(adc) + 1.f);
}

/// Inverse transform with rounding back to the 10-bit integer grid.
inline std::uint16_t inverse_log_adc(float log_value) {
  if (log_value <= 0.f) return 0;
  const float raw = std::exp2(log_value) - 1.f;
  const float clamped = std::min(raw, 1023.f);
  return static_cast<std::uint16_t>(clamped + 0.5f);
}

}  // namespace nc::tpc
