/// \file dataset.hpp
/// \brief Wedge dataset: generation, train/test split, batching, IO, stats.
///
/// Mirrors §2.1's data preparation: events are simulated, each event yields
/// 24 outer-group wedges, wedges are the unit of compression, and the event
/// list is split into train/test partitions (the paper: 1310 events ->
/// 1048 train / 262 test -> 25 152 / 6 288 wedges).  Splitting by *event*
/// (not by wedge) avoids leaking pile-up structure across the split.
///
/// Stored wedges are log-ADC tensors padded along the horizontal axis to a
/// multiple of 16 (zeros, per §2.3); `valid_horiz()` lets evaluation clip
/// the padding so metrics are not inflated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/tensor.hpp"
#include "tpc/event_gen.hpp"
#include "tpc/geometry.hpp"

namespace nc::tpc {

struct DatasetConfig {
  TpcGeometry geometry = TpcGeometry::bench_scale();
  EventGenConfig generator;
  std::int64_t n_events = 16;
  double train_fraction = 0.8;
  std::uint64_t seed = 20231023;  ///< default: the paper's arXiv date
};

class WedgeDataset {
 public:
  /// Simulate `config.n_events` events (parallel across events) and split.
  static WedgeDataset generate(const DatasetConfig& config);

  /// Load a dataset previously written by `save`.
  static WedgeDataset load(const std::string& path);
  void save(const std::string& path) const;

  const std::vector<core::Tensor>& train() const { return train_; }
  const std::vector<core::Tensor>& test() const { return test_; }

  /// Wedge shape (unpadded) and the padded horizontal length of the stored
  /// tensors.
  const WedgeShape& wedge_shape() const { return shape_; }
  std::int64_t valid_horiz() const { return shape_.horiz; }
  std::int64_t padded_horiz() const { return shape_.padded_horiz(); }

  /// Fraction of nonzero voxels over the *unpadded* region of both splits.
  double occupancy() const;

  /// Histogram of log-ADC values over the unpadded region (Fig. 3).
  /// Returns counts for `bins` uniform bins over [0, 10].
  std::vector<std::int64_t> log_adc_histogram(std::int64_t bins) const;

  /// Stack wedges[indices] into a 2-D network batch (N, radial, azim, ph).
  core::Tensor batch_2d(const std::vector<core::Tensor>& pool,
                        const std::vector<std::int64_t>& indices) const;

  /// Stack into a 3-D network batch (N, 1, radial, azim, ph).
  core::Tensor batch_3d(const std::vector<core::Tensor>& pool,
                        const std::vector<std::int64_t>& indices) const;

 private:
  WedgeShape shape_;
  std::vector<core::Tensor> train_;  ///< each (radial, azim, padded_horiz)
  std::vector<core::Tensor> test_;
};

/// Zero-pad a raw wedge (radial, azim, horiz) to (radial, azim, padded).
core::Tensor pad_wedge(const core::Tensor& wedge, std::int64_t padded_horiz);

/// Drop the horizontal padding again: (..., padded) -> (..., valid_horiz).
/// Works for batched 4-D/5-D tensors as well as single 3-D wedges.
core::Tensor clip_horizontal(const core::Tensor& t, std::int64_t valid_horiz);

}  // namespace nc::tpc
